# Empty dependencies file for widir_workload.
# This may be replaced when dependencies are built.
