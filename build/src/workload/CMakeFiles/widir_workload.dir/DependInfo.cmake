
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps/parsec_canneal_fluid.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/parsec_canneal_fluid.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/parsec_canneal_fluid.cc.o.d"
  "/root/repo/src/workload/apps/parsec_compute.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/parsec_compute.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/parsec_compute.cc.o.d"
  "/root/repo/src/workload/apps/parsec_pipeline.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/parsec_pipeline.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/parsec_pipeline.cc.o.d"
  "/root/repo/src/workload/apps/splash_barnes_fmm.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_barnes_fmm.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_barnes_fmm.cc.o.d"
  "/root/repo/src/workload/apps/splash_fft_radix.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_fft_radix.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_fft_radix.cc.o.d"
  "/root/repo/src/workload/apps/splash_lu_cholesky.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_lu_cholesky.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_lu_cholesky.cc.o.d"
  "/root/repo/src/workload/apps/splash_ocean.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_ocean.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_ocean.cc.o.d"
  "/root/repo/src/workload/apps/splash_radiosity.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_radiosity.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_radiosity.cc.o.d"
  "/root/repo/src/workload/apps/splash_raytrace_volrend.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_raytrace_volrend.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_raytrace_volrend.cc.o.d"
  "/root/repo/src/workload/apps/splash_water.cc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_water.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/apps/splash_water.cc.o.d"
  "/root/repo/src/workload/registry.cc" "src/workload/CMakeFiles/widir_workload.dir/registry.cc.o" "gcc" "src/workload/CMakeFiles/widir_workload.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cpu/CMakeFiles/widir_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/widir_core.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/widir_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/widir_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/widir_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
