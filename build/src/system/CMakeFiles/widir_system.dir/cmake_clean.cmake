file(REMOVE_RECURSE
  "CMakeFiles/widir_system.dir/checker.cc.o"
  "CMakeFiles/widir_system.dir/checker.cc.o.d"
  "CMakeFiles/widir_system.dir/experiment.cc.o"
  "CMakeFiles/widir_system.dir/experiment.cc.o.d"
  "CMakeFiles/widir_system.dir/manycore.cc.o"
  "CMakeFiles/widir_system.dir/manycore.cc.o.d"
  "libwidir_system.a"
  "libwidir_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
