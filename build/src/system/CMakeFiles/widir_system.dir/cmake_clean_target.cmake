file(REMOVE_RECURSE
  "libwidir_system.a"
)
