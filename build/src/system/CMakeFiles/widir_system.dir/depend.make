# Empty dependencies file for widir_system.
# This may be replaced when dependencies are built.
