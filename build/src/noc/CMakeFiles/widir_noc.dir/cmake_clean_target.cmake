file(REMOVE_RECURSE
  "libwidir_noc.a"
)
