# Empty compiler generated dependencies file for widir_noc.
# This may be replaced when dependencies are built.
