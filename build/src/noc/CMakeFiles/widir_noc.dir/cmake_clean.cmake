file(REMOVE_RECURSE
  "CMakeFiles/widir_noc.dir/mesh.cc.o"
  "CMakeFiles/widir_noc.dir/mesh.cc.o.d"
  "libwidir_noc.a"
  "libwidir_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
