file(REMOVE_RECURSE
  "libwidir_wireless.a"
)
