# Empty compiler generated dependencies file for widir_wireless.
# This may be replaced when dependencies are built.
