file(REMOVE_RECURSE
  "CMakeFiles/widir_wireless.dir/data_channel.cc.o"
  "CMakeFiles/widir_wireless.dir/data_channel.cc.o.d"
  "libwidir_wireless.a"
  "libwidir_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/widir_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
